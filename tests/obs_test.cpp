// Tests for the observability layer: JSON writer, counter registry/probe,
// flight-recorder chunk tracing, Chrome trace rendering, and the run-artifact
// exporter driven through run_experiment.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "core/experiment.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "routing/adaptive.hpp"
#include "routing/minimal.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

// --- a tiny recursive-descent JSON validator (syntax only) ---
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    ws();
    if (peek() == '}') { ++i_; return true; }
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (peek() != ':') return false;
      ++i_;
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    ws();
    if (peek() == ']') { ++i_; return true; }
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    for (++i_; i_ < s_.size(); ++i_) {
      if (s_[i_] == '\\') { ++i_; continue; }
      if (s_[i_] == '"') { ++i_; return true; }
    }
    return false;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
                              s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(i_, l.size(), l) != 0) return false;
    i_ += l.size();
    return true;
  }
  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  const std::string& s_;
  std::size_t i_ = 0;
};

std::string read_file(const std::filesystem::path& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(JsonWriter, CompactObjectWithEscapesAndNonFinite) {
  std::ostringstream os;
  obs::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.field("name", std::string("a\"b\\c\n\t"));
  w.field("int", std::int64_t{-42});
  w.field("pi", 3.25);
  w.field("bad", std::numeric_limits<double>::quiet_NaN());
  w.field("flag", true);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"name\":\"a\\\"b\\\\c\\n\\t\",\"int\":-42,\"pi\":3.25,\"bad\":null,"
            "\"flag\":true,\"list\":[1,2]}");
  EXPECT_EQ(w.depth(), 0u);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, PrettyOutputIsValidJson) {
  std::ostringstream os;
  obs::JsonWriter w(os, 2);
  w.begin_object();
  w.key("rows").begin_array();
  w.begin_object().field("x", 1).end_object();
  w.begin_object().field("y", 2.5).end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(Counters, OwnedCellsAreStableAndFindOrCreate) {
  CounterRegistry registry;
  std::uint64_t& a = registry.counter("x.count");
  a += 3;
  std::uint64_t& again = registry.counter("x.count");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(registry.size(), 1u);

  const CounterSnapshot snap = registry.snapshot(123);
  EXPECT_EQ(snap.time, 123);
  EXPECT_EQ(snap.value_of("x.count"), 3);
  EXPECT_TRUE(snap.contains("x.count"));
  EXPECT_FALSE(snap.contains("x.other"));
  EXPECT_THROW(snap.value_of("x.other"), std::out_of_range);
}

TEST(Counters, SnapshotIsSortedByName) {
  CounterRegistry registry;
  registry.counter("z.last") = 1;
  registry.counter("a.first") = 2;
  registry.add_source("m.middle", MetricKind::Gauge, [] { return std::int64_t{7}; });
  const CounterSnapshot snap = registry.snapshot(0);
  ASSERT_EQ(snap.values.size(), 3u);
  EXPECT_EQ(snap.values[0].first, "a.first");
  EXPECT_EQ(snap.values[1].first, "m.middle");
  EXPECT_EQ(snap.values[2].first, "z.last");
}

TEST(Counters, DuplicateRegistrationThrows) {
  CounterRegistry registry;
  registry.add_source("net.bytes", MetricKind::Counter, [] { return std::int64_t{0}; });
  EXPECT_THROW(
      registry.add_source("net.bytes", MetricKind::Counter, [] { return std::int64_t{0}; }),
      std::invalid_argument);
  // An owned cell cannot shadow a polled source either.
  EXPECT_THROW(registry.counter("net.bytes"), std::invalid_argument);
}

TEST(Counters, ProbeSamplesPeriodicallyAndStops) {
  Engine engine;
  CounterRegistry registry;
  std::uint64_t& ticks = registry.counter("test.ticks");
  CounterProbe probe(engine, registry, 100);
  EXPECT_THROW(CounterProbe(engine, registry, 0), std::invalid_argument);

  probe.start();
  EXPECT_THROW(probe.start(), std::logic_error);
  engine.run_until(500);
  ticks = 9;
  probe.request_stop();
  engine.run();
  probe.sample_now(engine.now());

  ASSERT_GE(probe.snapshots().size(), 3u);
  for (std::size_t i = 1; i < probe.snapshots().size(); ++i)
    EXPECT_GT(probe.snapshots()[i].time, probe.snapshots()[i - 1].time - 1);
  EXPECT_EQ(probe.snapshots().back().value_of("test.ticks"), 9);
}

// Sink that records everything for inspection.
struct RecordingSink : TraceSink {
  std::vector<HopEvent> hops;
  std::uint64_t sampled = 0;
  std::uint64_t closed = 0;
  std::uint64_t delivered = 0;
  void on_hop(const HopEvent& hop) override { hops.push_back(hop); }
  void on_chunk_sampled(std::uint64_t, MsgId, NodeId, NodeId, Bytes, SimTime) override {
    ++sampled;
  }
  void on_chunk_closed(std::uint64_t, SimTime, bool ok) override {
    ++closed;
    if (ok) ++delivered;
  }
};

struct TracedRun {
  RecordingSink sink;
  std::uint64_t chunks_seen = 0;
  std::uint64_t chunks_sampled = 0;
  std::size_t live = 0;
};

// Runs uniform traffic on the tiny topology with a tracer at `rate`.
TracedRun run_traced(double rate, int messages = 16) {
  TracedRun out;
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  ChunkPathTracer tracer(out.sink, rate);
  network.set_tracer(&tracer);
  const int nodes = topo.params().total_nodes();
  for (int m = 0; m < messages; ++m)
    network.send(m % nodes, (m + nodes / 2) % nodes, 64 * units::kKiB);
  engine.run();
  network.set_tracer(nullptr);
  out.chunks_seen = tracer.chunks_seen();
  out.chunks_sampled = tracer.chunks_sampled();
  out.live = tracer.live_chunks();
  return out;
}

TEST(Tracer, RejectsOutOfRangeSampleRate) {
  RecordingSink sink;
  EXPECT_THROW(ChunkPathTracer(sink, -0.01), std::invalid_argument);
  EXPECT_THROW(ChunkPathTracer(sink, 1.01), std::invalid_argument);
}

TEST(Tracer, SampleRateOneTracesEveryChunk) {
  const TracedRun run = run_traced(1.0);
  EXPECT_GT(run.chunks_seen, 0u);
  EXPECT_EQ(run.chunks_sampled, run.chunks_seen);
  EXPECT_EQ(run.sink.sampled, run.chunks_seen);
  EXPECT_EQ(run.sink.closed, run.chunks_seen);      // all closed after drain...
  EXPECT_EQ(run.sink.delivered, run.chunks_seen);   // ...all by delivery
  EXPECT_EQ(run.live, 0u);
}

TEST(Tracer, SampleRateZeroTracesNothing) {
  const TracedRun run = run_traced(0.0);
  EXPECT_GT(run.chunks_seen, 0u);
  EXPECT_EQ(run.chunks_sampled, 0u);
  EXPECT_TRUE(run.sink.hops.empty());
}

TEST(Tracer, FractionalRateMatchesConfiguredFraction) {
  const TracedRun run = run_traced(0.25, 64);
  ASSERT_GT(run.chunks_seen, 16u);
  // The error-feedback accumulator admits exactly floor/round(rate * n) ± 1.
  const double expected = 0.25 * static_cast<double>(run.chunks_seen);
  EXPECT_NEAR(static_cast<double>(run.chunks_sampled), expected, 1.0);
}

TEST(Tracer, HopTimestampsAreMonotonicPerChunk) {
  const TracedRun run = run_traced(1.0);
  ASSERT_FALSE(run.sink.hops.empty());
  std::map<std::uint64_t, std::vector<HopEvent>> by_chunk;
  for (const HopEvent& hop : run.sink.hops) by_chunk[hop.chunk].push_back(hop);
  EXPECT_EQ(by_chunk.size(), run.chunks_seen);
  for (const auto& [serial, hops] : by_chunk) {
    for (std::size_t i = 0; i < hops.size(); ++i) {
      EXPECT_LE(hops[i].enqueue_time, hops[i].start_time) << "chunk " << serial;
      EXPECT_LT(hops[i].start_time, hops[i].end_time) << "chunk " << serial;
      EXPECT_GE(hops[i].queue_depth, 0) << "chunk " << serial;
      if (i > 0) {
        // The wire release at hop i-1 precedes arrival (enqueue) at hop i.
        EXPECT_LE(hops[i - 1].end_time, hops[i].enqueue_time) << "chunk " << serial;
      }
    }
    // Minimal routing on a healthy network: between 1 hop (ejection at the
    // source router) and the max route length.
    EXPECT_GE(hops.size(), 1u);
    EXPECT_LE(hops.size(), static_cast<std::size_t>(kMaxRouteHops));
  }
}

TEST(Tracer, ChromeTraceRendersValidJson) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  ChromeTraceWriter writer;
  ChunkPathTracer tracer(writer, 1.0);
  network.set_tracer(&tracer);
  network.send(0, topo.params().total_nodes() - 1, 16 * units::kKiB);
  engine.run();
  network.set_tracer(nullptr);

  ASSERT_GT(writer.hops().size(), 0u);
  std::ostringstream os;
  writer.render(os);
  const std::string doc = os.str();
  EXPECT_TRUE(JsonChecker(doc).valid());
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\""), std::string::npos);
  EXPECT_NE(doc.find("\"X\""), std::string::npos);
  EXPECT_NE(doc.find("process_name"), std::string::npos);
}

TEST(RoutingTelemetry, AdaptiveDecisionsAreRecorded) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  AdaptiveRouting routing(topo);
  RoutingTelemetry stats;
  routing.set_telemetry(&stats);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  const int nodes = topo.params().total_nodes();
  for (int n = 0; n < nodes; ++n) network.send(n, (n + nodes / 2) % nodes, 64 * units::kKiB);
  engine.run();
  routing.set_telemetry(nullptr);

  EXPECT_GT(stats.decisions(), 0u);
  EXPECT_EQ(stats.decisions(), stats.minimal_total() + stats.nonminimal_total());
  std::uint64_t per_source_sum = 0;
  for (const RouteDecisionStats& d : stats.per_source()) per_source_sum += d.minimal + d.nonminimal;
  EXPECT_EQ(per_source_sum, stats.decisions());
}

TEST(Telemetry, OptionsValidateRejectsBadValues) {
  TelemetryOptions o;
  o.sample_rate = 2.0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.sample_rate = 0.5;
  o.snapshot_interval = 0;
  EXPECT_THROW(o.validate(), std::invalid_argument);
  o.snapshot_interval = 1000;
  o.enabled = true;
  o.out_dir.clear();
  EXPECT_THROW(o.validate(), std::invalid_argument);
}

TEST(Telemetry, ExperimentExportsAllArtifacts) {
  namespace fs = std::filesystem;
  const fs::path out = fs::path(::testing::TempDir()) / "dfly-obs-test";
  fs::remove_all(out);

  Workload workload{"ring", make_ring_trace(/*ranks=*/16, 32 * units::kKiB, /*iterations=*/1)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.seed = 7;
  options.telemetry.enabled = true;
  options.telemetry.sample_rate = 0.5;
  options.telemetry.out_dir = out.string();
  options.telemetry.snapshot_interval = 10 * units::kMicrosecond;
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Adaptive};
  const ExperimentResult result = run_experiment(workload, config, options);

  ASSERT_FALSE(result.telemetry_dir.empty());
  const fs::path dir(result.telemetry_dir);
  EXPECT_EQ(dir.filename().string(), result.config);
  for (const char* name : {"metrics.json", "trace.json", "counters.jsonl", "heatmap.csv"})
    EXPECT_TRUE(fs::exists(dir / name)) << name;

  EXPECT_GT(result.trace_chunks_seen, 0u);
  EXPECT_NEAR(static_cast<double>(result.trace_chunks_sampled),
              0.5 * static_cast<double>(result.trace_chunks_seen), 1.0);

  EXPECT_TRUE(JsonChecker(read_file(dir / "metrics.json")).valid());
  EXPECT_TRUE(JsonChecker(read_file(dir / "trace.json")).valid());

  std::ifstream jsonl(dir / "counters.jsonl");
  std::string line;
  int lines = 0;
  while (std::getline(jsonl, line)) {
    ++lines;
    EXPECT_TRUE(JsonChecker(line).valid()) << "line " << lines;
    EXPECT_NE(line.find("\"net.bytes_delivered\""), std::string::npos);
    EXPECT_NE(line.find("\"routing.decisions\""), std::string::npos);
  }
  EXPECT_GE(lines, 2);  // at least the start and end-of-run snapshots

  std::ifstream csv(dir / "heatmap.csv");
  std::getline(csv, line);
  EXPECT_EQ(line, "router,port,kind,traffic_bytes,saturated_ns,utilization");
  int csv_rows = 0;
  while (std::getline(csv, line)) ++csv_rows;
  const TopoParams topo = TopoParams::tiny();
  EXPECT_GT(csv_rows, topo.total_routers());  // every router contributes ports

  fs::remove_all(out);
}

TEST(Telemetry, DisabledLeavesNoFootprint) {
  Workload workload{"ring", make_ring_trace(8, 16 * units::kKiB, 1)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  const ExperimentResult result = run_experiment(workload, config, options);
  EXPECT_TRUE(result.telemetry_dir.empty());
  EXPECT_EQ(result.trace_chunks_seen, 0u);
  EXPECT_EQ(result.trace_chunks_sampled, 0u);
}

}  // namespace
}  // namespace dfly
