// Reproduces Fig. 3: communication-time distributions (box plots) for CR, FB
// and AMG under all ten placement x routing configurations, each application
// running alone on the Theta-like system.
//
// Paper shape to reproduce: CR best near rand-min, FB best at rand-adp, AMG
// best with contiguous placement; cont-min is the worst case for FB.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Fig. 3", "communication time distributions, 3 apps x 10 configs", scale,
                     seed);
  table1_nomenclature().print_markdown(std::cout);

  ExperimentOptions options;
  options.seed = seed;

  bench::BenchJson json("fig3_comm_time", scale, seed);
  for (const Workload& w :
       {bench::cr_workload(scale), bench::fb_workload(scale), bench::amg_workload(scale)}) {
    std::printf("running %s (%d ranks, %.1f MB total)...\n", w.name.c_str(), w.trace.ranks(),
                units::to_mb(w.trace.total_send_bytes()));
    bench::run_and_report_matrix(w, options, bench::bench_threads(), &json);
  }
  json.write("BENCH_fig3_comm_time.json");
  return 0;
}
