#include "topo/dragonfly.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace dfly {

const char* to_string(PortKind kind) {
  switch (kind) {
    case PortKind::Terminal: return "terminal";
    case PortKind::LocalRow: return "local-row";
    case PortKind::LocalCol: return "local-col";
    case PortKind::Global: return "global";
  }
  return "?";
}

DragonflyTopology::DragonflyTopology(const TopoParams& params)
    : params_(params), coords_(params) {
  params_.validate();
  ports_per_router_ = params_.nodes_per_router + (params_.cols - 1) + (params_.rows - 1) +
                      params_.global_ports_per_router;
  build_global_links();
  local_port_disabled_.assign(static_cast<std::size_t>(total_channels()), 0);
  pair_version_.assign(static_cast<std::size_t>(params_.groups) * params_.groups, 0);
  local_version_.assign(static_cast<std::size_t>(params_.groups), 0);
}

PortKind DragonflyTopology::port_kind(int port) const {
  assert(port >= 0 && port < ports_per_router_);
  if (port < first_row_port()) return PortKind::Terminal;
  if (port < first_col_port()) return PortKind::LocalRow;
  if (port < first_global_port()) return PortKind::LocalCol;
  return PortKind::Global;
}

RouterId DragonflyTopology::neighbor(RouterId router, int port) const {
  const PortKind kind = port_kind(port);
  const RouterCoord c = coords_.coord(router);
  switch (kind) {
    case PortKind::Terminal:
      assert(false && "terminal ports have no router neighbor");
      return -1;
    case PortKind::LocalRow: {
      const int idx = port - first_row_port();          // 0..cols-2
      const int col = idx < c.col ? idx : idx + 1;      // skip own column
      return coords_.router_at(c.group, c.row, col);
    }
    case PortKind::LocalCol: {
      const int idx = port - first_col_port();          // 0..rows-2
      const int row = idx < c.row ? idx : idx + 1;      // skip own row
      return coords_.router_at(c.group, row, c.col);
    }
    case PortKind::Global: {
      const int gidx = router * params_.global_ports_per_router + (port - first_global_port());
      return global_peer_router_[gidx];
    }
  }
  return -1;
}

int DragonflyTopology::neighbor_port(RouterId router, int port) const {
  const PortKind kind = port_kind(port);
  const RouterId peer = neighbor(router, port);
  switch (kind) {
    case PortKind::Terminal:
      return -1;
    case PortKind::LocalRow:
      return row_port_to(peer, router);
    case PortKind::LocalCol:
      return col_port_to(peer, router);
    case PortKind::Global: {
      const int gidx = router * params_.global_ports_per_router + (port - first_global_port());
      return global_peer_port_[gidx];
    }
  }
  return -1;
}

int DragonflyTopology::row_port_to(RouterId from, RouterId to) const {
  const RouterCoord a = coords_.coord(from);
  const RouterCoord b = coords_.coord(to);
  assert(a.group == b.group && a.row == b.row && a.col != b.col);
  return first_row_port() + (b.col < a.col ? b.col : b.col - 1);
}

int DragonflyTopology::col_port_to(RouterId from, RouterId to) const {
  const RouterCoord a = coords_.coord(from);
  const RouterCoord b = coords_.coord(to);
  assert(a.group == b.group && a.col == b.col && a.row != b.row);
  return first_col_port() + (b.row < a.row ? b.row : b.row - 1);
}

int DragonflyTopology::local_port_to(RouterId from, RouterId to) const {
  const RouterCoord a = coords_.coord(from);
  const RouterCoord b = coords_.coord(to);
  if (a.group != b.group || from == to) return -1;
  if (a.row == b.row) return row_port_to(from, to);
  if (a.col == b.col) return col_port_to(from, to);
  return -1;
}

std::span<const GlobalLink> DragonflyTopology::global_links(GroupId ga, GroupId gb) const {
  assert(ga != gb);
  return global_links_[static_cast<std::size_t>(ga) * params_.groups + gb];
}

std::span<const GlobalLink> DragonflyTopology::all_global_links(GroupId ga, GroupId gb) const {
  assert(ga != gb);
  return all_global_links_[static_cast<std::size_t>(ga) * params_.groups + gb];
}

void DragonflyTopology::build_global_links() {
  const int groups = params_.groups;
  const int gpr = params_.global_ports_per_router;
  const int rpg = params_.routers_per_group();
  const int ports_per_group = rpg * gpr;
  const int links_per_pair = ports_per_group / (groups - 1);

  global_links_.assign(static_cast<std::size_t>(groups) * groups, {});
  global_peer_router_.assign(static_cast<std::size_t>(params_.total_routers()) * gpr, -1);
  global_peer_port_.assign(global_peer_router_.size(), -1);

  // Linear port index i of group g points at g's (i % (groups-1))-th peer
  // group (the other groups in increasing order); the
  // j-th port of g pointing at peer h pairs with the j-th port of h pointing
  // at g.
  auto ports_toward = [&](GroupId g, GroupId h) {
    std::vector<int> ports;
    ports.reserve(links_per_pair);
    const int k = h < g ? h : h - 1;  // index of h in g's peer list
    for (int i = k; i < ports_per_group; i += groups - 1) ports.push_back(i);
    return ports;
  };

  for (GroupId a = 0; a < groups; ++a) {
    for (GroupId b = a + 1; b < groups; ++b) {
      const std::vector<int> pa = ports_toward(a, b);
      const std::vector<int> pb = ports_toward(b, a);
      if (pa.size() != pb.size())
        throw std::logic_error("dragonfly global arrangement is asymmetric");
      auto& forward = global_links_[static_cast<std::size_t>(a) * groups + b];
      auto& backward = global_links_[static_cast<std::size_t>(b) * groups + a];
      for (std::size_t j = 0; j < pa.size(); ++j) {
        const RouterId ra = a * rpg + pa[j] / gpr;
        const int porta = first_global_port() + pa[j] % gpr;
        const RouterId rb = b * rpg + pb[j] / gpr;
        const int portb = first_global_port() + pb[j] % gpr;
        forward.push_back(GlobalLink{ra, porta, rb, portb});
        backward.push_back(GlobalLink{rb, portb, ra, porta});
        global_peer_router_[static_cast<std::size_t>(ra) * gpr + pa[j] % gpr] = rb;
        global_peer_port_[static_cast<std::size_t>(ra) * gpr + pa[j] % gpr] = portb;
        global_peer_router_[static_cast<std::size_t>(rb) * gpr + pb[j] % gpr] = ra;
        global_peer_port_[static_cast<std::size_t>(rb) * gpr + pb[j] % gpr] = porta;
      }
    }
  }

  // Every global port must be wired exactly once.
  for (const RouterId peer : global_peer_router_)
    if (peer < 0) throw std::logic_error("dragonfly global arrangement left a port unwired");

  all_global_links_ = global_links_;  // as-built view; never mutated again
  global_port_disabled_.assign(global_peer_router_.size(), 0);
}

void DragonflyTopology::rebuild_pair(GroupId a, GroupId b) {
  auto rebuild_one = [&](GroupId x, GroupId y) {
    const auto& all = all_global_links_[static_cast<std::size_t>(x) * params_.groups + y];
    auto& enabled = global_links_[static_cast<std::size_t>(x) * params_.groups + y];
    enabled.clear();
    for (const GlobalLink& link : all) {
      if (global_port_disabled_[global_flag_index(link.src_router, link.src_port)] == 0)
        enabled.push_back(link);
    }
  };
  rebuild_one(a, b);
  rebuild_one(b, a);
}

void DragonflyTopology::bump_pair(GroupId a, GroupId b) {
  ++pair_version_[static_cast<std::size_t>(a) * params_.groups + b];
  ++pair_version_[static_cast<std::size_t>(b) * params_.groups + a];
  ++epoch_;
}

void DragonflyTopology::disable_global_link(GroupId a, GroupId b, int index) {
  if (a == b) throw std::invalid_argument("disable_global_link: a == b");
  auto& forward = global_links_[static_cast<std::size_t>(a) * params_.groups + b];
  if (index < 0 || index >= static_cast<int>(forward.size()))
    throw std::invalid_argument("disable_global_link: index out of range");
  if (forward.size() <= 1)
    throw std::invalid_argument("disable_global_link: would disconnect the group pair");
  const GlobalLink link = forward[index];

  global_port_disabled_[global_flag_index(link.src_router, link.src_port)] = 1;
  global_port_disabled_[global_flag_index(link.dst_router, link.dst_port)] = 1;

  forward.erase(forward.begin() + index);
  auto& backward = global_links_[static_cast<std::size_t>(b) * params_.groups + a];
  for (auto it = backward.begin(); it != backward.end(); ++it) {
    if (it->src_router == link.dst_router && it->src_port == link.dst_port) {
      backward.erase(it);
      break;
    }
  }
  ++disabled_count_;
  bump_pair(a, b);
}

bool DragonflyTopology::set_global_link_state(GroupId a, GroupId b, int all_index, bool up) {
  if (a == b) throw std::invalid_argument("set_global_link_state: a == b");
  const auto& all = all_global_links_[static_cast<std::size_t>(a) * params_.groups + b];
  if (all_index < 0 || all_index >= static_cast<int>(all.size()))
    throw std::invalid_argument("set_global_link_state: index out of range");
  const GlobalLink link = all[all_index];
  const std::size_t fwd = global_flag_index(link.src_router, link.src_port);
  const std::size_t bwd = global_flag_index(link.dst_router, link.dst_port);
  const bool currently_up = global_port_disabled_[fwd] == 0;
  if (currently_up == up) return false;
  if (!up) {
    const auto& enabled = global_links_[static_cast<std::size_t>(a) * params_.groups + b];
    if (enabled.size() <= 1)
      throw std::invalid_argument("set_global_link_state: would disconnect group pair " +
                                  std::to_string(a) + "<->" + std::to_string(b));
  }
  global_port_disabled_[fwd] = up ? 0 : 1;
  global_port_disabled_[bwd] = up ? 0 : 1;
  disabled_count_ += up ? -1 : 1;
  rebuild_pair(a, b);
  bump_pair(a, b);
  return true;
}

bool DragonflyTopology::set_local_link_state(RouterId u, RouterId v, bool up) {
  const int port_uv = local_port_to(u, v);
  if (port_uv < 0)
    throw std::invalid_argument("set_local_link_state: routers " + std::to_string(u) + " and " +
                                std::to_string(v) + " are not local neighbors");
  const int port_vu = local_port_to(v, u);
  const std::size_t ch_uv = static_cast<std::size_t>(channel_id(u, port_uv));
  const std::size_t ch_vu = static_cast<std::size_t>(channel_id(v, port_vu));
  const bool currently_up = local_port_disabled_[ch_uv] == 0;
  if (currently_up == up) return false;
  local_port_disabled_[ch_uv] = up ? 0 : 1;
  local_port_disabled_[ch_vu] = up ? 0 : 1;
  const GroupId g = coords_.coord(u).group;
  if (!up && !group_two_hop_connected(g)) {
    local_port_disabled_[ch_uv] = 0;  // revert: the guard failed
    local_port_disabled_[ch_vu] = 0;
    throw std::invalid_argument(
        "set_local_link_state: downing link " + std::to_string(u) + "<->" + std::to_string(v) +
        " would leave group " + std::to_string(g) + " without minimal local paths");
  }
  disabled_local_count_ += up ? -1 : 1;
  ++local_version_[g];
  ++epoch_;
  return true;
}

bool DragonflyTopology::local_two_hop_path(RouterId x, RouterId y) const {
  // Direct hop?
  const int direct = local_port_to(x, y);
  if (direct >= 0 && local_port_disabled_[channel_id(x, direct)] == 0) return true;
  // Two hops via some mid router m with enabled x->m and m->y links. The
  // candidate mids are exactly the routers local to both x and y.
  const RouterCoord cx = coords_.coord(x);
  const RouterCoord cy = coords_.coord(y);
  auto hop_ok = [&](RouterId from, RouterId to) {
    const int p = local_port_to(from, to);
    return p >= 0 && local_port_disabled_[channel_id(from, p)] == 0;
  };
  if (cx.row == cy.row) {
    // A mid must neighbor both endpoints; for a same-row pair that means the
    // other columns of the shared row (a column neighbor of x never shares
    // y's row or column).
    for (int col = 0; col < params_.cols; ++col) {
      if (col == cx.col || col == cy.col) continue;
      const RouterId m = coords_.router_at(cx.group, cx.row, col);
      if (hop_ok(x, m) && hop_ok(m, y)) return true;
    }
    return false;
  }
  if (cx.col == cy.col) {
    for (int row = 0; row < params_.rows; ++row) {
      if (row == cx.row || row == cy.row) continue;
      const RouterId m = coords_.router_at(cx.group, row, cx.col);
      if (hop_ok(x, m) && hop_ok(m, y)) return true;
    }
    return false;
  }
  // Different row and column: the only 2-hop mids are the two intersections.
  const RouterId m1 = coords_.router_at(cx.group, cx.row, cy.col);
  const RouterId m2 = coords_.router_at(cx.group, cy.row, cx.col);
  return (hop_ok(x, m1) && hop_ok(m1, y)) || (hop_ok(x, m2) && hop_ok(m2, y));
}

bool DragonflyTopology::group_two_hop_connected(GroupId g) const {
  const int rpg = params_.routers_per_group();
  const RouterId base = g * rpg;
  for (int i = 0; i < rpg; ++i) {
    for (int j = i + 1; j < rpg; ++j) {
      if (!local_two_hop_path(base + i, base + j)) return false;
    }
  }
  return true;
}

bool DragonflyTopology::port_enabled(RouterId router, int port) const {
  switch (port_kind(port)) {
    case PortKind::Terminal:
      return true;
    case PortKind::LocalRow:
    case PortKind::LocalCol:
      return local_port_disabled_[channel_id(router, port)] == 0;
    case PortKind::Global:
      return global_port_disabled_[global_flag_index(router, port)] == 0;
  }
  return true;
}

int disable_random_global_links(DragonflyTopology& topo, double fraction, Rng& rng) {
  if (fraction < 0 || fraction >= 1)
    throw std::invalid_argument("disable_random_global_links: fraction must be in [0, 1)");
  int disabled = 0;
  const int groups = topo.params().groups;
  for (GroupId a = 0; a < groups; ++a) {
    for (GroupId b = a + 1; b < groups; ++b) {
      const auto initial = static_cast<int>(topo.global_links(a, b).size());
      const int target = static_cast<int>(fraction * initial);
      for (int k = 0; k < target && static_cast<int>(topo.global_links(a, b).size()) > 1; ++k) {
        const auto remaining = static_cast<std::uint64_t>(topo.global_links(a, b).size());
        topo.disable_global_link(a, b, static_cast<int>(rng.uniform(remaining)));
        ++disabled;
      }
    }
  }
  return disabled;
}

}  // namespace dfly
