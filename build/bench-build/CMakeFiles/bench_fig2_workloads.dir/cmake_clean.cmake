file(REMOVE_RECURSE
  "../bench/bench_fig2_workloads"
  "../bench/bench_fig2_workloads.pdb"
  "CMakeFiles/bench_fig2_workloads.dir/bench_fig2_workloads.cpp.o"
  "CMakeFiles/bench_fig2_workloads.dir/bench_fig2_workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
