#include "lint/linter.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace dfly::lint {
namespace {

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

}  // namespace

LintResult lint_sources(const std::vector<MemSource>& sources) {
  std::map<std::string, SourceFile> files;
  for (const MemSource& src : sources) {
    SourceFile file;
    file.rel = src.rel;
    file.module = module_of(src.rel);
    file.tokens = tokenize(src.content);
    file.includes = quoted_includes(file.tokens);
    files.emplace(src.rel, std::move(file));
  }
  return run_rules(files);
}

LintResult lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  if (!fs::is_directory(base)) throw std::runtime_error("lint: not a directory: " + root);

  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (entry.is_regular_file() && lintable(entry.path())) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  std::vector<MemSource> sources;
  sources.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) throw std::runtime_error("lint: cannot read " + p.string());
    std::ostringstream text;
    text << in.rdbuf();
    sources.push_back({fs::relative(p, base).generic_string(), text.str()});
  }
  return lint_sources(sources);
}

void write_lint_json(const LintResult& result, const std::string& root, std::ostream& os) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema_version", 1);
  w.field("root", root);
  w.field("files_scanned", result.files_scanned);
  w.field("violation_count", static_cast<std::uint64_t>(result.violations.size()));
  w.field("exemption_count", static_cast<std::uint64_t>(result.exemptions.size()));

  // Per-rule tallies, keyed by canonical rule id (sorted for stable bytes).
  std::map<std::string, std::pair<int, int>> per_rule;  // rule -> {violations, exemptions}
  for (const Violation& v : result.violations) per_rule[v.rule].first++;
  for (const Exemption& e : result.exemptions) per_rule[e.rule].second++;
  w.key("rules");
  w.begin_object();
  for (const auto& [rule, counts] : per_rule) {
    w.key(rule);
    w.begin_object();
    w.field("violations", counts.first);
    w.field("exemptions", counts.second);
    w.end_object();
  }
  w.end_object();

  w.key("violations");
  w.begin_array();
  for (const Violation& v : result.violations) {
    w.begin_object();
    w.field("rule", v.rule);
    w.field("file", v.file);
    w.field("line", v.line);
    w.field("message", v.message);
    w.end_object();
  }
  w.end_array();

  w.key("exemptions");
  w.begin_array();
  for (const Exemption& e : result.exemptions) {
    w.begin_object();
    w.field("rule", e.rule);
    w.field("file", e.file);
    w.field("line", e.line);
    w.field("reason", e.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

}  // namespace dfly::lint
