// Reproduces Table II: peak background traffic load on the network for each
// target application, under the uniform-random and bursty patterns.
//
// The peak load is "the total message load among all the ranks at a specific
// time interval" — for our open-loop driver that is nodes x fan-out x message
// size per tick. Values at the default DFLY_SCALE=0.25 are calibrated to the
// paper's uniform-random column (38.38 / 38.38 / 27 MB); the bursty column
// keeps the paper's burst>>app ordering at a simulation-tractable magnitude
// (the substitution is documented in DESIGN.md).
#include <iostream>

#include "bench_common.hpp"
#include "bench_interference.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Table II", "peak background traffic load", scale, seed);

  const TopoParams topo = TopoParams::theta();
  struct AppRow {
    const char* name;
    int ranks;
    BackgroundSpec uniform;
    BackgroundSpec bursty;
  };
  const AppRow rows[] = {
      {"CR", 1000, bench::uniform_background(15600, 20 * units::kMicrosecond, scale),
       bench::bursty_background(100 * units::kKB, 8, 100 * units::kMicrosecond, scale)},
      {"FB", 1000, bench::uniform_background(15600, 10 * units::kMicrosecond, scale),
       bench::bursty_background(50 * units::kKB, 4, 100 * units::kMicrosecond, scale)},
      {"AMG", 1728, bench::uniform_background(16 * units::kKB, 2 * units::kMicrosecond, scale),
       bench::bursty_background(25 * units::kKB, 4, 100 * units::kMicrosecond, scale)},
  };

  Table t("Table II: peak background traffic load on the network");
  t.set_columns({"application", "background nodes", "uniform random (MB)", "bursty (MB)",
                 "paper uniform (MB)", "paper bursty (GB)"});
  const char* paper_uniform[] = {"38.38", "38.38", "27.00"};
  const char* paper_bursty[] = {"92.00", "5.75", "2.85"};
  bench::BenchJson json("table2_background_load", scale, seed);
  int i = 0;
  for (const AppRow& row : rows) {
    const std::size_t bg = topo.total_nodes() - row.ranks;
    t.add_row({row.name, Table::num(static_cast<std::int64_t>(bg)),
               Table::num(units::to_mb(row.uniform.peak_load(bg)), 2),
               Table::num(units::to_mb(row.bursty.peak_load(bg)), 2), paper_uniform[i],
               paper_bursty[i]});
    json.add_row(row.name, "",
                 {{"background_nodes", static_cast<double>(bg)},
                  {"uniform_mb", units::to_mb(row.uniform.peak_load(bg))},
                  {"bursty_mb", units::to_mb(row.bursty.peak_load(bg))}});
    ++i;
  }
  t.print_markdown(std::cout);
  json.write("BENCH_table2_background_load.json");

  std::printf(
      "Bursty loads are scaled down from the paper's whole-job all-to-all bursts\n"
      "(92 / 5.75 / 2.85 GB) by capping the per-node fan-out; the burst-to-app\n"
      "volume ratio, which drives the Figs. 9-10 variability result, is preserved.\n");
  return 0;
}
