// Unit and property tests for minimal / Valiant / adaptive routing.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "routing/adaptive.hpp"
#include "routing/minimal.hpp"
#include "routing/valiant.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {
namespace {

/// Congestion oracle for tests: everything idle.
class IdleCongestion : public CongestionView {
 public:
  Bytes queued_bytes(RouterId, int) const override { return 0; }
};

/// Congestion oracle reporting a fixed queue on one channel.
class HotChannel : public CongestionView {
 public:
  HotChannel(RouterId router, int port, Bytes queued)
      : router_(router), port_(port), queued_(queued) {}
  Bytes queued_bytes(RouterId router, int port) const override {
    return (router == router_ && port == port_) ? queued_ : 0;
  }

 private:
  RouterId router_;
  int port_;
  Bytes queued_;
};

/// Validates that a route is physically well-formed: starts at src's router,
/// every hop's port leads to the next hop's router, the last hop ejects at
/// dst's terminal port, and VCs strictly increase.
void expect_valid_route(const DragonflyTopology& topo, const Route& route, NodeId src,
                        NodeId dst) {
  const Coordinates& c = topo.coords();
  ASSERT_GT(route.size(), 0);
  ASSERT_LE(route.size(), kMaxRouteHops);
  EXPECT_EQ(route.first().router, c.router_of_node(src));
  for (int i = 0; i < route.size(); ++i) {
    const Hop& hop = route[i];
    EXPECT_EQ(hop.vc, i) << "VCs must escalate with hop index";
    if (i + 1 < route.size()) {
      EXPECT_NE(topo.port_kind(hop.port), PortKind::Terminal);
      EXPECT_EQ(topo.neighbor(hop.router, hop.port), route[i + 1].router)
          << "hop " << i << " does not lead to the next router";
    } else {
      EXPECT_EQ(topo.port_kind(hop.port), PortKind::Terminal);
      EXPECT_EQ(hop.router, c.router_of_node(dst));
      EXPECT_EQ(hop.port, c.slot_of_node(dst));
    }
  }
}

class RoutingProperty : public ::testing::TestWithParam<TopoParams> {
 protected:
  void SetUp() override { topo_.emplace(GetParam()); }
  std::optional<DragonflyTopology> topo_;
};

TEST_P(RoutingProperty, MinimalRoutesAreValidForRandomPairs) {
  MinimalRouting routing(*topo_);
  IdleCongestion idle;
  Rng rng(1);
  const int nodes = GetParam().total_nodes();
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Route route = routing.compute(src, dst, idle, rng);
    expect_valid_route(*topo_, route, src, dst);
    // Minimal inter-group path: <= 2 local + global + <= 2 local + eject.
    EXPECT_LE(route.size(), 6);
  }
}

TEST_P(RoutingProperty, MinimalRouteLengthMatchesMinHops) {
  MinimalRouting routing(*topo_);
  IdleCongestion idle;
  Rng rng(2);
  const Coordinates& c = topo_->coords();
  const int nodes = GetParam().total_nodes();
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Route route = routing.compute(src, dst, idle, rng);
    const int expected = routing.table().min_hops(c.router_of_node(src), c.router_of_node(dst));
    EXPECT_EQ(route.size(), expected + 1) << "route must be minimal (+1 ejection hop)";
  }
}

TEST_P(RoutingProperty, ValiantRoutesAreValidForRandomPairs) {
  ValiantRouting routing(*topo_);
  IdleCongestion idle;
  Rng rng(3);
  const int nodes = GetParam().total_nodes();
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Route route = routing.compute(src, dst, idle, rng);
    expect_valid_route(*topo_, route, src, dst);
  }
}

TEST_P(RoutingProperty, AdaptiveRoutesAreValidForRandomPairs) {
  AdaptiveRouting routing(*topo_);
  IdleCongestion idle;
  Rng rng(4);
  const int nodes = GetParam().total_nodes();
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Route route = routing.compute(src, dst, idle, rng);
    expect_valid_route(*topo_, route, src, dst);
  }
}

TEST_P(RoutingProperty, AdaptivePicksMinimalOnIdleNetwork) {
  AdaptiveRouting adaptive(*topo_);
  MinimalRouting minimal(*topo_);
  IdleCongestion idle;
  Rng rng(5);
  const Coordinates& c = topo_->coords();
  const int nodes = GetParam().total_nodes();
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Route route = adaptive.compute(src, dst, idle, rng);
    const int min_len =
        minimal.table().min_hops(c.router_of_node(src), c.router_of_node(dst)) + 1;
    EXPECT_EQ(route.size(), min_len) << "idle network must yield a minimal route";
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, RoutingProperty,
                         ::testing::Values(TopoParams::tiny(), TopoParams::theta()),
                         [](const auto& pinfo) {
                           return pinfo.param.groups == 3 ? std::string("tiny")
                                                          : std::string("theta");
                         });

TEST(MinimalRouting, SameRouterPairIsEjectOnly) {
  const DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  IdleCongestion idle;
  Rng rng(6);
  // Nodes 0 and 1 share router 0 in the tiny config.
  const Route route = routing.compute(0, 1, idle, rng);
  ASSERT_EQ(route.size(), 1);
  EXPECT_EQ(route[0].router, 0);
  EXPECT_EQ(topo.port_kind(route[0].port), PortKind::Terminal);
}

TEST(MinimalRouting, SameRowIsOneLocalHop) {
  const DragonflyTopology topo(TopoParams::theta());
  MinimalRouting routing(topo);
  IdleCongestion idle;
  Rng rng(7);
  // Router 0 and router 1 share row 0 of group 0; first node on each.
  const Route route = routing.compute(0, 1 * 4, idle, rng);
  ASSERT_EQ(route.size(), 2);
  EXPECT_EQ(topo.port_kind(route[0].port), PortKind::LocalRow);
  EXPECT_EQ(route[1].router, 1);
}

TEST(MinimalRouting, DiagonalIntraGroupIsTwoLocalHops) {
  const DragonflyTopology topo(TopoParams::theta());
  MinimalRouting routing(topo);
  IdleCongestion idle;
  Rng rng(8);
  const Coordinates& c = topo.coords();
  const RouterId r_dst = c.router_at(0, 3, 7);  // different row and column from router 0
  const Route route = routing.compute(0, c.node_of(r_dst, 0), idle, rng);
  ASSERT_EQ(route.size(), 3);
  // Intermediate router must share row or col with both endpoints.
  const RouterId mid = route[1].router;
  const RouterCoord mc = c.coord(mid);
  EXPECT_TRUE((mc.row == 0 && mc.col == 7) || (mc.row == 3 && mc.col == 0));
}

TEST(MinimalRouting, IntersectionTieBreaksUseBothCandidates) {
  const DragonflyTopology topo(TopoParams::theta());
  MinimalRouting routing(topo);
  IdleCongestion idle;
  Rng rng(9);
  const Coordinates& c = topo.coords();
  const RouterId r_dst = c.router_at(0, 3, 7);
  std::set<RouterId> mids;
  for (int i = 0; i < 50; ++i) {
    const Route route = routing.compute(0, c.node_of(r_dst, 0), idle, rng);
    mids.insert(route[1].router);
  }
  EXPECT_EQ(mids.size(), 2u) << "both row/col intersections should be sampled";
}

TEST(MinimalRouting, InterGroupRouteCrossesExactlyOneGlobalLink) {
  const DragonflyTopology topo(TopoParams::theta());
  MinimalRouting routing(topo);
  IdleCongestion idle;
  Rng rng(10);
  const Coordinates& c = topo.coords();
  Rng pick(99);
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(pick.uniform(topo.params().total_nodes()));
    auto dst = static_cast<NodeId>(pick.uniform(topo.params().total_nodes()));
    if (c.group_of_node(src) == c.group_of_node(dst)) continue;
    const Route route = routing.compute(src, dst, idle, rng);
    int globals = 0;
    for (int h = 0; h < route.size(); ++h)
      if (topo.port_kind(route[h].port) == PortKind::Global) ++globals;
    EXPECT_EQ(globals, 1);
  }
}

TEST(ValiantRouting, IntermediateAvoidsEndpointRouters) {
  const DragonflyTopology topo(TopoParams::tiny());
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const RouterId via = pick_valiant_intermediate(topo, 3, 17, rng);
    EXPECT_NE(via, 3);
    EXPECT_NE(via, 17);
    EXPECT_LT(via, topo.params().total_routers());
  }
}

TEST(AdaptiveRouting, AvoidsCongestedMinimalFirstHop) {
  const DragonflyTopology topo(TopoParams::theta());
  AdaptiveRouting adaptive(topo);
  MinimalRouting minimal(topo);
  IdleCongestion idle;
  Rng rng(12);
  // Find the minimal first-hop channel for a same-row pair, then congest it
  // heavily; adaptive must route around it (different first hop or longer
  // path).
  const NodeId src = 0, dst = 3 * 4;  // router 0 -> router 3, same row
  const Route min_route = minimal.compute(src, dst, idle, rng);
  const HotChannel hot(min_route.first().router, min_route.first().port,
                       64 * units::kMiB);
  int avoided = 0;
  for (int i = 0; i < 50; ++i) {
    const Route route = adaptive.compute(src, dst, hot, rng);
    if (!(route.first().router == min_route.first().router &&
          route.first().port == min_route.first().port))
      ++avoided;
  }
  EXPECT_GT(avoided, 40) << "adaptive should usually dodge a hot first hop";
}

TEST(RoutingFactory, NamesAndKinds) {
  const DragonflyTopology topo(TopoParams::tiny());
  EXPECT_EQ(make_routing(RoutingKind::Minimal, topo)->name(), "minimal");
  EXPECT_EQ(make_routing(RoutingKind::Adaptive, topo)->name(), "adaptive");
  EXPECT_EQ(make_routing(RoutingKind::Valiant, topo)->name(), "valiant");
  EXPECT_STREQ(to_string(RoutingKind::Minimal), "min");
  EXPECT_STREQ(to_string(RoutingKind::Adaptive), "adp");
}

}  // namespace
}  // namespace dfly
