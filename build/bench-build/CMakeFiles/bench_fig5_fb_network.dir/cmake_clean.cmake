file(REMOVE_RECURSE
  "../bench/bench_fig5_fb_network"
  "../bench/bench_fig5_fb_network.pdb"
  "CMakeFiles/bench_fig5_fb_network.dir/bench_fig5_fb_network.cpp.o"
  "CMakeFiles/bench_fig5_fb_network.dir/bench_fig5_fb_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fb_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
