// The classic 1-D dragonfly (Kim et al. [1]: routers of a group all-to-all
// connected, no row/column structure) is the rows=1 degenerate case of our
// Cascade topology. These tests exercise that configuration end to end.
#include <gtest/gtest.h>

#include "core/run_matrix.hpp"
#include "routing/minimal.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

TopoParams classic_dragonfly() {
  // a = 8 routers per group, h = 4 global ports, p = 4 nodes; g = 9 groups
  // (the canonical balanced dragonfly has g = a*h + 1 = 33; we keep 9 so
  // 8*4 = 32 ports spread evenly over 8 peers).
  TopoParams p;
  p.groups = 9;
  p.rows = 1;
  p.cols = 8;
  p.nodes_per_router = 4;
  p.global_ports_per_router = 4;
  p.chassis_per_cabinet = 1;
  return p;
}

TEST(OneDDragonfly, ValidatesAndBuilds) {
  const TopoParams p = classic_dragonfly();
  EXPECT_NO_THROW(p.validate());
  const DragonflyTopology topo(p);
  // Ports: 4 terminal + 7 row + 0 col + 4 global.
  EXPECT_EQ(topo.ports_per_router(), 15);
  EXPECT_EQ(topo.first_col_port(), topo.first_global_port());  // no column ports
}

TEST(OneDDragonfly, IntraGroupIsSingleHop) {
  const DragonflyTopology topo(classic_dragonfly());
  MinimalPathTable table(topo);
  // Any two distinct routers of a group are directly connected.
  for (RouterId a = 0; a < 8; ++a)
    for (RouterId b = 0; b < 8; ++b)
      EXPECT_EQ(table.min_hops(a, b), a == b ? 0 : 1);
}

TEST(OneDDragonfly, InterGroupAtMostThreeHops) {
  // Classic dragonfly minimal: local + global + local.
  const DragonflyTopology topo(classic_dragonfly());
  MinimalPathTable table(topo);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto a = static_cast<RouterId>(rng.uniform(topo.params().total_routers()));
    const auto b = static_cast<RouterId>(rng.uniform(topo.params().total_routers()));
    if (topo.coords().group_of_router(a) == topo.coords().group_of_router(b)) continue;
    const int hops = table.min_hops(a, b);
    EXPECT_GE(hops, 1);
    EXPECT_LE(hops, 3);
  }
}

TEST(OneDDragonfly, MinimalRoutesAreValid) {
  const DragonflyTopology topo(classic_dragonfly());
  MinimalRouting routing(topo);
  struct Idle : CongestionView {
    Bytes queued_bytes(RouterId, int) const override { return 0; }
  } idle;
  Rng rng(2);
  const Coordinates& c = topo.coords();
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(topo.params().total_nodes()));
    auto dst = static_cast<NodeId>(rng.uniform(topo.params().total_nodes() - 1));
    if (dst >= src) ++dst;
    const Route route = routing.compute(src, dst, idle, rng);
    EXPECT_EQ(route.first().router, c.router_of_node(src));
    EXPECT_EQ(route.last().router, c.router_of_node(dst));
    EXPECT_LE(route.size(), 4);  // <= 3 router hops + ejection
    for (int h = 0; h + 1 < route.size(); ++h)
      EXPECT_EQ(topo.neighbor(route[h].router, route[h].port), route[h + 1].router);
  }
}

TEST(OneDDragonfly, FullExperimentMatrixRuns) {
  ExperimentOptions options;
  options.topo = classic_dragonfly();
  options.seed = 11;
  options.max_events = 200'000'000;
  const Workload ring{"ring", make_ring_trace(64, 64 * units::kKiB, 2)};
  const auto results = run_matrix(ring, table1_configs(), options, 2);
  for (const ExperimentResult& r : results) {
    EXPECT_FALSE(r.hit_event_limit) << r.config;
    EXPECT_EQ(r.metrics.comm_time_ms.size(), 64u);
  }
}

TEST(OneDDragonfly, LocalityStillWinsOnHops) {
  ExperimentOptions options;
  options.topo = classic_dragonfly();
  options.seed = 13;
  const Workload ring{"ring", make_ring_trace(64, 16 * units::kKiB, 1)};
  const auto cont = run_experiment(
      ring, ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Minimal}, options);
  const auto rand = run_experiment(
      ring, ExperimentConfig{PlacementKind::RandomNode, RoutingKind::Minimal}, options);
  EXPECT_LT(percentile(cont.metrics.avg_hops, 50), percentile(rand.metrics.avg_hops, 50));
}

}  // namespace
}  // namespace dfly
