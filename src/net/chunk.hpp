// Packet chunks and their pool.
//
// A chunk is the unit of transfer, arbitration and buffering. Chunks are
// pool-allocated and recycled at delivery; ChunkId is a stable index into the
// pool, small enough to travel inside an EventPayload.
//
// Sharded engine support: the pool is split into per-lane arenas. A ChunkId
// packs (lane << 22) | index, so allocation and free-list maintenance are
// single-writer per lane — each arena is touched only by its owning lane's
// worker (or by the coordinator in global context). Chunk storage is
// block-allocated (4096 chunks per block) and the block-pointer vector is
// pre-reserved, so a growing arena never relocates existing chunks — another
// lane may safely read a chunk handed to it across a barrier while the owner
// arena grows. With a single lane (the unsharded engine) the packed ids
// degenerate to the plain 0,1,2,... sequence of the original pool.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "routing/route.hpp"
#include "util/units.hpp"

namespace dfly {

using ChunkId = std::uint32_t;
using MsgId = std::uint32_t;

/// Sentinel "no chunk" value (OutPort::tx_chunk when the wire is idle). Note
/// it decodes to lane 1023, which the engine caps below the valid range, so
/// the sentinel can never collide with a real chunk.
inline constexpr ChunkId kNoChunk = 0xFFFFFFFFu;

/// Flight-recorder serial of a chunk the tracer is not sampling.
inline constexpr std::uint64_t kNoTraceSerial = ~std::uint64_t{0};

struct Chunk {
  MsgId msg = 0;
  std::int32_t bytes = 0;
  std::int8_t hop_idx = 0;  ///< index of the route hop whose router holds the chunk
  /// Set when the chunk was discarded mid-flight on a failed link. The chunk
  /// stays allocated as a tombstone until its already-scheduled arrival event
  /// fires (which releases it); releasing eagerly would let the pool recycle
  /// the id while a stale event still references it.
  bool dropped = false;
  /// Tracer sampling identity. The serial travels with the chunk (not in a
  /// tracer-side map) so per-lane tracers can follow a chunk across lanes
  /// without sharing state; kNoTraceSerial means "not sampled".
  std::uint64_t trace_serial = kNoTraceSerial;
  Route route;
};

class ChunkPool {
 public:
  static constexpr int kLaneShift = 22;
  static constexpr ChunkId kIndexMask = (ChunkId{1} << kLaneShift) - 1;
  static constexpr std::size_t kBlockSize = 4096;
  static constexpr std::size_t kMaxBlocks = (std::size_t{kIndexMask} + 1) / kBlockSize;

  ChunkPool() { set_lanes(1); }

  /// Re-partitions the pool into `lanes` arenas; only valid while empty.
  void set_lanes(int lanes) {
    assert(lanes >= 1 && lanes < 1023 && "lane 1023 is reserved for kNoChunk");
    assert(capacity() == 0 && "cannot re-lane a pool holding chunks");
    arenas_ = std::vector<Arena>(static_cast<std::size_t>(lanes));
    for (Arena& a : arenas_) a.blocks.reserve(kMaxBlocks);
  }
  int lanes() const { return static_cast<int>(arenas_.size()); }

  ChunkId allocate(int lane) {
    Arena& a = arenas_[static_cast<std::size_t>(lane)];
    if (!a.free.empty()) {
      const ChunkId id = a.free.back();
      a.free.pop_back();
      return id;
    }
    if (a.size % kBlockSize == 0) {
      // reserve() in set_lanes guarantees this push never reallocates the
      // block-pointer array, which other lanes read concurrently.
      assert(a.blocks.size() < kMaxBlocks && "chunk arena exhausted");
      a.blocks.push_back(std::make_unique<Chunk[]>(kBlockSize));
    }
    const std::uint32_t idx = a.size++;
    return (static_cast<ChunkId>(lane) << kLaneShift) | idx;
  }

  void release(ChunkId id) {
    (*this)[id] = Chunk{};
    arenas_[id >> kLaneShift].free.push_back(id);
  }

  Chunk& operator[](ChunkId id) {
    const std::size_t idx = id & kIndexMask;
    return arenas_[id >> kLaneShift].blocks[idx / kBlockSize][idx % kBlockSize];
  }
  const Chunk& operator[](ChunkId id) const {
    const std::size_t idx = id & kIndexMask;
    return arenas_[id >> kLaneShift].blocks[idx / kBlockSize][idx % kBlockSize];
  }

  /// True when `id` names a slot that exists (allocated or free) — the
  /// checkpoint loader's bounds check.
  bool valid(ChunkId id) const {
    const std::size_t lane = id >> kLaneShift;
    return lane < arenas_.size() && (id & kIndexMask) < arenas_[lane].size;
  }

  std::size_t capacity() const {
    std::size_t n = 0;
    for (const Arena& a : arenas_) n += a.size;
    return n;
  }
  std::size_t in_use() const {
    std::size_t n = capacity();
    for (const Arena& a : arenas_) n -= a.free.size();
    return n;
  }

  // --- checkpoint support: raw per-arena slot/free-list access ---
  // The free list's order matters (allocate pops from the back), so restore
  // takes it verbatim rather than recomputing it.
  std::uint32_t arena_size(int lane) const {
    return arenas_[static_cast<std::size_t>(lane)].size;
  }
  const std::vector<ChunkId>& arena_free(int lane) const {
    return arenas_[static_cast<std::size_t>(lane)].free;
  }
  /// Recreates one arena with `size` value-initialized slots and an empty
  /// free list; the caller then fills live slots through operator[] and
  /// installs the free list with set_arena_free.
  void restore_arena(int lane, std::uint32_t size) {
    Arena& a = arenas_[static_cast<std::size_t>(lane)];
    a.blocks.clear();
    a.blocks.reserve(kMaxBlocks);
    for (std::size_t made = 0; made < size; made += kBlockSize)
      a.blocks.push_back(std::make_unique<Chunk[]>(kBlockSize));
    a.size = size;
    a.free.clear();
  }
  /// Installs a restored free list verbatim without touching the slots.
  void set_arena_free(int lane, std::vector<ChunkId> free_list) {
    arenas_[static_cast<std::size_t>(lane)].free = std::move(free_list);
  }

 private:
  struct Arena {
    std::vector<std::unique_ptr<Chunk[]>> blocks;
    std::uint32_t size = 0;  ///< slots ever created in this arena
    std::vector<ChunkId> free;
  };

  std::vector<Arena> arenas_;
};

}  // namespace dfly
