// Worker side of the farm protocol, plus the per-config sweep step shared
// with the thread-pool run_matrix.
//
// A worker attempt communicates with its supervisor exclusively through the
// filesystem and its exit code:
//   <dir>/<config>.ckpt — periodic snapshot (src/ckpt); a retry resumes here
//   <dir>/<config>.done — CRC-framed ExperimentResult marker on success
//   <dir>/<config>.err  — human-readable failure message for the quarantine
//   exit code           — kExitOk / kExitTransient / ... (farm/retry.hpp)
// Everything is written atomically (tmp + rename + fsync), so a SIGKILL at
// any instant leaves either the previous attempt's state or the new one,
// never a torn file.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace dfly::farm {

/// Per-config file names inside a sweep checkpoint directory.
std::string sweep_ckpt_path(const std::string& dir, const std::string& config_name);
std::string sweep_done_path(const std::string& dir, const std::string& config_name);
std::string sweep_err_path(const std::string& dir, const std::string& config_name);
/// Liveness heartbeat ([prof] enabled): <dir>/<config>.status.json.
std::string sweep_status_path(const std::string& dir, const std::string& config_name);

/// Runs one config of a sweep with the .ckpt/.done marker protocol:
/// with checkpoint.resume set, a .done marker short-circuits to the stored
/// result and a .ckpt resumes mid-run; on completion the .done marker is
/// written and the superseded .ckpt removed. `sweep_options.checkpoint.path`
/// names the sweep DIRECTORY (must be non-empty). Used by both run_matrix's
/// thread pool and the farm's worker processes — one code path, two
/// isolation models.
ExperimentResult run_sweep_config(const Workload& workload, const ExperimentConfig& config,
                                  const ExperimentOptions& sweep_options,
                                  const DragonflyTopology* shared_topo);

/// Child-process entry point: installs SIGTERM/SIGINT handlers wired to the
/// checkpoint stop flag, runs run_sweep_config, maps the outcome to the exit
/// code protocol, and writes <config>.err on failure. Never throws; the
/// caller should pass the return value straight to _exit().
int worker_main(const Workload& workload, const ExperimentConfig& config,
                const ExperimentOptions& sweep_options) noexcept;

}  // namespace dfly::farm
