// External-traffic impact driver (paper §IV-C, Figs. 8-10): run the target
// application under each configuration while a synthetic background job
// floods the rest of the machine, and compare against the interference-free
// runs.
#pragma once

#include <vector>

#include "core/experiment.hpp"
#include "metrics/report.hpp"

namespace dfly {

struct InterferenceResult {
  std::vector<NamedMetrics> with_background;
  std::vector<NamedMetrics> baseline;  ///< same configs, no background
  Bytes peak_background_load = 0;      ///< Table II value for this spec

  /// Per-config slowdown of median communication time, with vs without
  /// background (the paper's "performance degradation").
  Table degradation_table(const std::string& title) const;
};

InterferenceResult run_interference(const Workload& workload,
                                    const std::vector<ExperimentConfig>& configs,
                                    const ExperimentOptions& options, const BackgroundSpec& spec,
                                    int threads = 0);

}  // namespace dfly
