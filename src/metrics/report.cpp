#include "metrics/report.hpp"

#include "util/stats.hpp"

namespace dfly {

Table comm_time_box_table(const std::string& title, const std::vector<NamedMetrics>& runs) {
  Table t(title);
  t.set_columns({"config", "min (ms)", "q1 (ms)", "median (ms)", "q3 (ms)", "max (ms)"});
  for (const NamedMetrics& run : runs) {
    const BoxStats b = box_stats(run.metrics.comm_time_ms);
    t.add_row({run.config, Table::num(b.min, 3), Table::num(b.q1, 3), Table::num(b.median, 3),
               Table::num(b.q3, 3), Table::num(b.max, 3)});
  }
  return t;
}

Table cdf_table(const std::string& title, const std::vector<NamedMetrics>& runs,
                const std::vector<double>& fractions,
                const std::vector<double>& (*select)(const RunMetrics&), int precision) {
  Table t(title);
  std::vector<std::string> headers = {"config"};
  for (const double f : fractions) headers.push_back("p" + Table::num(100.0 * f, 0));
  t.set_columns(std::move(headers));
  for (const NamedMetrics& run : runs) {
    const Cdf cdf(select(run.metrics));
    std::vector<std::string> row = {run.config};
    for (const double f : fractions) row.push_back(Table::num(cdf.quantile(f), precision));
    t.add_row(std::move(row));
  }
  return t;
}

const std::vector<double>& select_avg_hops(const RunMetrics& m) { return m.avg_hops; }
const std::vector<double>& select_local_traffic(const RunMetrics& m) { return m.local_traffic_mb; }
const std::vector<double>& select_global_traffic(const RunMetrics& m) {
  return m.global_traffic_mb;
}
const std::vector<double>& select_local_saturation(const RunMetrics& m) {
  return m.local_saturation_ms;
}
const std::vector<double>& select_global_saturation(const RunMetrics& m) {
  return m.global_saturation_ms;
}

Table summary_table(const std::string& title, const std::vector<NamedMetrics>& runs) {
  Table t(title);
  t.set_columns({"config", "makespan (ms)", "median comm (ms)", "events", "delivered (MB)"});
  for (const NamedMetrics& run : runs) {
    t.add_row({run.config, Table::num(run.metrics.makespan_ms, 3),
               Table::num(run.metrics.median_comm_ms(), 3),
               Table::num(static_cast<std::int64_t>(run.metrics.events)),
               Table::num(units::to_mb(run.metrics.bytes_delivered), 1)});
  }
  return t;
}

}  // namespace dfly
