// Profiler suite (DESIGN.md §11): the wall-clock attribution subsystem and
// its cardinal invariant — profiling must not perturb the simulation. The
// differential tests run the same experiment with [prof] off and on (serial
// and sharded), across thread counts, and through a checkpoint interrupt +
// resume, and require every existing artifact to stay byte-identical;
// prof.json is the one artifact allowed to carry wall-clock values. Plus unit
// coverage for the HDR-style histogram edge cases, the sim-vs-wall throughput
// tracker, atomic heartbeat writes, and the [prof] config section.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/experiment.hpp"
#include "farm/manifest.hpp"
#include "farm/supervisor.hpp"
#include "farm/worker.hpp"
#include "prof/heartbeat.hpp"
#include "prof/profiler.hpp"
#include "prof/wall_histogram.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

namespace fs = std::filesystem;
using prof::HeartbeatInfo;
using prof::HeartbeatWriter;
using prof::ThroughputTracker;
using prof::WallHistogram;

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// WallHistogram
// ---------------------------------------------------------------------------

TEST(WallHistogramTest, EmptyHistogramReportsZeros) {
  const WallHistogram h(3);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0);
  EXPECT_EQ(h.percentile(100.0), 0);
}

TEST(WallHistogramTest, RejectsOutOfRangeResolution) {
  EXPECT_THROW(WallHistogram(-1), std::invalid_argument);
  EXPECT_THROW(WallHistogram(9), std::invalid_argument);
  EXPECT_NO_THROW(WallHistogram(0));
  EXPECT_NO_THROW(WallHistogram(8));
}

TEST(WallHistogramTest, NegativeValuesClampToZero) {
  // A non-monotonic clock step must not corrupt the bucket index or the sums.
  WallHistogram h(3);
  h.add(-100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.percentile(50.0), 0);
}

TEST(WallHistogramTest, HugeValuesClampIntoTheTopBucket) {
  WallHistogram h(3);
  h.add(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::int64_t>::max());
  EXPECT_GT(h.percentile(100.0), 0);
  EXPECT_LE(h.percentile(100.0), h.max());
}

TEST(WallHistogramTest, PercentilesAreMonotonicAndBoundSamples) {
  WallHistogram h(3);
  for (std::int64_t v = 1; v <= 1000; ++v) h.add(v * 1000);
  EXPECT_EQ(h.count(), 1000u);
  const std::int64_t p50 = h.percentile(50.0);
  const std::int64_t p90 = h.percentile(90.0);
  const std::int64_t p99 = h.percentile(99.0);
  const std::int64_t p100 = h.percentile(100.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p100);
  // percentile() returns bucket lower bounds; bits=3 keeps relative error
  // under one octave.
  EXPECT_GE(p100, h.max() / 2);
  EXPECT_LE(p100, h.max());
  EXPECT_GE(p50, 1000);
  // Out-of-range p clamps instead of indexing out of bounds.
  EXPECT_EQ(h.percentile(-5.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(200.0), p100);
}

TEST(WallHistogramTest, MergeSumsSamplesAndRequiresSameResolution) {
  WallHistogram a(3);
  WallHistogram b(3);
  a.add(10);
  b.add(30);
  b.add(50);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 90);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 50);
  const WallHistogram coarser(2);
  EXPECT_THROW(a.merge(coarser), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ThroughputTracker (explicit wall clock — no sleeping in tests)
// ---------------------------------------------------------------------------

TEST(ThroughputTrackerTest, CumulativeRatesFromExplicitClock) {
  ThroughputTracker t;
  t.start_at(0, 0, 0, 0);
  t.sample_at(2'000'000'000, 4'000'000'000, 1000, 500);  // 2s wall, 4s sim
  EXPECT_EQ(t.samples(), 1u);
  EXPECT_EQ(t.wall_ns(), 2'000'000'000);
  const ThroughputTracker::Rates r = t.cumulative();
  EXPECT_DOUBLE_EQ(r.events_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(r.chunks_per_sec, 250.0);
  EXPECT_DOUBLE_EQ(r.sim_per_wall, 2.0);
}

TEST(ThroughputTrackerTest, RollingWindowTracksTheRecentRate) {
  ThroughputTracker t;
  t.start_at(0, 0, 0, 0);
  std::int64_t wall = 0;
  std::uint64_t events = 0;
  // Four slow seconds (100 ev/s) then eight fast ones (1000 ev/s): the
  // rolling window (kWindow = 8) should see only the fast phase.
  for (int i = 0; i < 4; ++i) {
    wall += 1'000'000'000;
    events += 100;
    t.sample_at(wall, wall, events, 0);
  }
  for (int i = 0; i < 8; ++i) {
    wall += 1'000'000'000;
    events += 1000;
    t.sample_at(wall, wall, events, 0);
  }
  EXPECT_DOUBLE_EQ(t.rolling().events_per_sec, 1000.0);
  EXPECT_DOUBLE_EQ(t.cumulative().events_per_sec, (4 * 100 + 8 * 1000) / 12.0);
}

TEST(ThroughputTrackerTest, ZeroWallSpanYieldsZeroRates) {
  ThroughputTracker t;
  t.start_at(5, 0, 0, 0);
  t.sample_at(5, 1'000'000, 42, 7);
  EXPECT_DOUBLE_EQ(t.cumulative().events_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(t.cumulative().sim_per_wall, 0.0);
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

HeartbeatInfo sample_heartbeat() {
  HeartbeatInfo info;
  info.schema_version = prof::kHeartbeatSchemaVersion;
  info.config = "contiguous-minimal";
  info.state = "running";
  info.pid = 4242;
  info.wall_ms = 1234;
  info.sim_ns = 5'000'000;
  info.events = 987654;
  info.events_per_sec = 12345.5;
  info.rss_bytes = 64 << 20;
  info.last_ckpt_age_ms = 250;
  info.slices = 7;
  return info;
}

TEST(HeartbeatTest, RenderParseRoundTrips) {
  const HeartbeatInfo in = sample_heartbeat();
  const HeartbeatInfo out = prof::parse_heartbeat(prof::render_heartbeat(in));
  EXPECT_EQ(out.schema_version, in.schema_version);
  EXPECT_EQ(out.config, in.config);
  EXPECT_EQ(out.state, in.state);
  EXPECT_EQ(out.pid, in.pid);
  EXPECT_EQ(out.wall_ms, in.wall_ms);
  EXPECT_EQ(out.sim_ns, in.sim_ns);
  EXPECT_EQ(out.events, in.events);
  EXPECT_NEAR(out.events_per_sec, in.events_per_sec, 0.1);
  EXPECT_EQ(out.rss_bytes, in.rss_bytes);
  EXPECT_EQ(out.last_ckpt_age_ms, in.last_ckpt_age_ms);
  EXPECT_EQ(out.slices, in.slices);
}

TEST(HeartbeatTest, ParserRejectsMissingAndMalformedFields) {
  EXPECT_THROW(prof::parse_heartbeat("{}"), std::runtime_error);
  EXPECT_THROW(prof::parse_heartbeat(""), std::runtime_error);
  std::string text = prof::render_heartbeat(sample_heartbeat());
  const std::size_t at = text.find("\"pid\": 4242");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("\"pid\": 4242").size(), "\"pid\": oops");
  EXPECT_THROW(prof::parse_heartbeat(text), std::runtime_error);
}

TEST(HeartbeatTest, WriterIsAtomicAndWallGated) {
  const std::string path = temp_path("hb-atomic.status.json");
  fs::remove(path);
  HeartbeatWriter w(path, /*period_ms=*/60'000);
  EXPECT_TRUE(w.enabled());

  HeartbeatInfo info;
  info.config = "cfg";
  info.state = "running";
  EXPECT_TRUE(w.beat(info));  // first beat always lands
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "rename must consume the temp file";

  const HeartbeatInfo parsed = prof::read_heartbeat_file(path);
  EXPECT_EQ(parsed.schema_version, prof::kHeartbeatSchemaVersion);
  EXPECT_EQ(parsed.config, "cfg");
  EXPECT_EQ(parsed.pid, static_cast<std::int64_t>(::getpid()));
  EXPECT_EQ(parsed.last_ckpt_age_ms, -1) << "no checkpoint noted yet";

  EXPECT_FALSE(w.beat(info)) << "inside the period, an unforced beat is a no-op";
  w.note_checkpoint();
  EXPECT_TRUE(w.beat(info, /*force=*/true));
  EXPECT_GE(prof::read_heartbeat_file(path).last_ckpt_age_ms, 0);
  fs::remove(path);
}

TEST(HeartbeatTest, EmptyPathDisablesTheWriter) {
  HeartbeatWriter w("", 1);
  EXPECT_FALSE(w.enabled());
  EXPECT_FALSE(w.beat(HeartbeatInfo{}, /*force=*/true));
}

// ---------------------------------------------------------------------------
// [prof] config section
// ---------------------------------------------------------------------------

TEST(ProfConfig, OptionsValidate) {
  EXPECT_NO_THROW(prof::ProfOptions{}.validate());
  prof::ProfOptions bad;
  bad.heartbeat_period_ms = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = prof::ProfOptions{};
  bad.hist_bucket_bits = 9;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.hist_bucket_bits = -1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ProfConfig, RoundTripsThroughConfigText) {
  ExperimentOptions o;
  o.prof.enabled = true;
  o.prof.heartbeat_period_ms = 250;
  o.prof.hist_bucket_bits = 5;
  const std::string text = render_config(o);
  EXPECT_NE(text.find("[prof]"), std::string::npos);
  std::istringstream is(text);
  const ExperimentOptions parsed = parse_config(is, ExperimentOptions{});
  EXPECT_TRUE(parsed.prof.enabled);
  EXPECT_EQ(parsed.prof.heartbeat_period_ms, 250);
  EXPECT_EQ(parsed.prof.hist_bucket_bits, 5);
  EXPECT_TRUE(parsed.prof.status_path.empty()) << "status_path is runtime wiring, never config";
}

TEST(ProfConfig, RejectsBadValues) {
  std::istringstream zero_period("[prof]\nheartbeat_period_ms = 0\n");
  EXPECT_THROW(parse_config(zero_period, ExperimentOptions{}), std::invalid_argument);
  std::istringstream bits_too_high("[prof]\nhist_bucket_bits = 9\n");
  EXPECT_THROW(parse_config(bits_too_high, ExperimentOptions{}), std::invalid_argument);
  std::istringstream non_bool("[prof]\nenabled = 2\n");
  EXPECT_THROW(parse_config(non_bool, ExperimentOptions{}), std::runtime_error);
}

// ---------------------------------------------------------------------------
// The cardinal invariant: profiling does not perturb the simulation
// ---------------------------------------------------------------------------

Workload prof_workload() { return {"ring", make_ring_trace(24, 32 * units::kKiB, 2)}; }

ExperimentOptions prof_options(const std::string& telemetry_dir, int threads) {
  ExperimentOptions o;
  o.topo = TopoParams::tiny();
  o.seed = 11;
  o.threads = threads;
  o.max_events = 100'000'000;
  o.telemetry.enabled = true;
  o.telemetry.sample_rate = 0.05;
  o.telemetry.snapshot_interval = 20 * units::kMicrosecond;
  o.telemetry.out_dir = temp_path(telemetry_dir);
  return o;
}

const char* const kArtifacts[] = {"metrics.json", "counters.jsonl", "heatmap.csv", "trace.json"};

void expect_artifacts_byte_equal(const ExperimentOptions& a, const ExperimentOptions& b,
                                 const std::string& config_name, const std::string& what) {
  for (const char* artifact : kArtifacts) {
    const std::string lhs = slurp(a.telemetry.out_dir + "/" + config_name + "/" + artifact);
    const std::string rhs = slurp(b.telemetry.out_dir + "/" + config_name + "/" + artifact);
    ASSERT_FALSE(lhs.empty()) << artifact;
    EXPECT_EQ(lhs, rhs) << artifact << " differs: " << what;
  }
}

void expect_prof_does_not_perturb(int threads, const std::string& tag) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Adaptive};
  const Workload workload = prof_workload();

  ExperimentOptions off = prof_options(tag + "-off", threads);
  const ExperimentResult r_off = run_experiment(workload, config, off);
  ASSERT_TRUE(r_off.conservation_ok);
  ASSERT_GT(r_off.metrics.events, 0u);

  ExperimentOptions on = prof_options(tag + "-on", threads);
  on.prof.enabled = true;
  const ExperimentResult r_on = run_experiment(workload, config, on);
  EXPECT_EQ(r_on.metrics.events, r_off.metrics.events);
  EXPECT_EQ(r_on.metrics.makespan_ms, r_off.metrics.makespan_ms);
  EXPECT_EQ(r_on.metrics.comm_time_ms, r_off.metrics.comm_time_ms);

  expect_artifacts_byte_equal(off, on, config.name(), "profiling on vs off");
  EXPECT_FALSE(fs::exists(off.telemetry.out_dir + "/" + config.name() + "/prof.json"));
  EXPECT_TRUE(fs::exists(on.telemetry.out_dir + "/" + config.name() + "/prof.json"));
}

TEST(ProfDifferential, SerialRunIsByteIdenticalWithProfilingOnOrOff) {
  expect_prof_does_not_perturb(/*threads=*/0, "prof-serial");
}

TEST(ProfDifferential, ShardedRunIsByteIdenticalWithProfilingOnOrOff) {
  expect_prof_does_not_perturb(/*threads=*/2, "prof-shard");
}

TEST(ProfDifferential, ThreadCountsAgreeByteForByteWithProfilingOn) {
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Adaptive};
  const Workload workload = prof_workload();

  ExperimentOptions oracle = prof_options("prof-t1", 1);
  oracle.prof.enabled = true;
  const ExperimentResult r1 = run_experiment(workload, config, oracle);
  ASSERT_TRUE(r1.conservation_ok);

  ExperimentOptions par = prof_options("prof-t2", 2);
  par.prof.enabled = true;
  const ExperimentResult r2 = run_experiment(workload, config, par);
  EXPECT_EQ(r2.metrics.events, r1.metrics.events);
  expect_artifacts_byte_equal(oracle, par, config.name(), "threads 1 vs 2, profiling on");
}

TEST(ProfDifferential, CheckpointResumeWithProfilingOnStaysByteIdentical) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Adaptive};
  const Workload workload = prof_workload();

  ExperimentOptions golden_opts = prof_options("prof-ck-golden", 2);
  golden_opts.prof.enabled = true;
  const ExperimentResult golden = run_experiment(workload, config, golden_opts);
  const SimTime makespan = static_cast<SimTime>(golden.metrics.makespan_ms * 1e6);
  ASSERT_GT(makespan, 0);

  const std::string snapshot = temp_path("prof-ck.ckpt");
  const std::string status = temp_path("prof-ck.status.json");
  ExperimentOptions interrupted = prof_options("prof-ck-resumed", 2);
  interrupted.prof.enabled = true;
  interrupted.prof.status_path = status;
  interrupted.checkpoint.interval = makespan / 6 > 0 ? makespan / 6 : 1;
  interrupted.checkpoint.path = snapshot;
  interrupted.checkpoint.stop_after = makespan / 2;
  const ExperimentResult partial = run_experiment(workload, config, interrupted);
  ASSERT_TRUE(partial.stopped_at_checkpoint);

  // The interrupted run heartbeat: final forced beat reports the state.
  const HeartbeatInfo hb = prof::read_heartbeat_file(status);
  EXPECT_EQ(hb.state, "interrupted");
  EXPECT_GT(hb.sim_ns, 0);

  ExperimentOptions resumed = interrupted;
  resumed.checkpoint.resume = true;
  resumed.checkpoint.stop_after = 0;
  const ExperimentResult full = run_experiment(workload, config, resumed);
  EXPECT_EQ(full.metrics.events, golden.metrics.events);
  EXPECT_EQ(full.metrics.comm_time_ms, golden.metrics.comm_time_ms);
  expect_artifacts_byte_equal(golden_opts, resumed, config.name(),
                              "checkpoint resume with profiling on");
  EXPECT_EQ(prof::read_heartbeat_file(status).state, "done");
  std::remove(snapshot.c_str());
  std::remove(status.c_str());
}

TEST(ProfReport, ProfJsonCarriesAttributionAndLaneBreakdown) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  ExperimentOptions o = prof_options("prof-report", 2);
  o.prof.enabled = true;
  const ExperimentResult r = run_experiment(prof_workload(), config, o);
  ASSERT_GT(r.metrics.events, 0u);

  const std::string text = slurp(o.telemetry.out_dir + "/" + config.name() + "/prof.json");
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(contains(text, "\"schema_version\": 1"));
  for (const char* subsystem :
       {"event_dispatch", "routing", "nic_retransmit", "checkpoint_io", "telemetry_export"})
    EXPECT_TRUE(contains(text, subsystem)) << subsystem;
  EXPECT_TRUE(contains(text, "\"lanes_breakdown\""));
  EXPECT_TRUE(contains(text, "\"barrier_wait_ns\""));
  EXPECT_TRUE(contains(text, "\"lane_imbalance\""));
  EXPECT_TRUE(contains(text, "\"barrier_stall_fraction\""));
  EXPECT_TRUE(contains(text, "\"throughput\""));
  EXPECT_TRUE(contains(text, "\"p99.9\""));
  // threads=2 shards per group: more than one lane must appear.
  std::size_t lane_entries = 0;
  for (std::size_t at = text.find("\"lane\":"); at != std::string::npos;
       at = text.find("\"lane\":", at + 1))
    ++lane_entries;
  EXPECT_GT(lane_entries, 1u);

  // The other new artifact fields ride along: schema versions in the
  // telemetry exports.
  EXPECT_TRUE(contains(slurp(o.telemetry.out_dir + "/" + config.name() + "/metrics.json"),
                       "\"schema_version\": 2"));
  EXPECT_TRUE(contains(slurp(o.telemetry.out_dir + "/" + config.name() + "/counters.jsonl"),
                       "\"schema_version\":2"));
}

// ---------------------------------------------------------------------------
// Farm liveness: per-worker status.json + aggregated farm_status.json
// ---------------------------------------------------------------------------

TEST(ProfFarm, WorkersHeartbeatAndTheSupervisorAggregates) {
  const Workload workload = prof_workload();
  const std::vector<ExperimentConfig> configs = {
      {PlacementKind::Contiguous, RoutingKind::Minimal},
      {PlacementKind::RandomNode, RoutingKind::Adaptive}};

  ExperimentOptions o;
  o.topo = TopoParams::tiny();
  o.seed = 11;
  o.checkpoint.interval = 3 * units::kMicrosecond;
  o.checkpoint.path = temp_path("prof-farm");
  fs::remove_all(o.checkpoint.path);
  o.farm.enabled = true;
  o.farm.workers = 2;
  o.farm.timeout_ms = 120'000;
  o.farm.backoff_ms = 10;
  o.prof.enabled = true;
  const farm::FarmReport report = farm::run_farm(workload, configs, o);
  ASSERT_TRUE(report.all_ok());

  // Every worker left a final atomic heartbeat behind.
  for (const ExperimentConfig& c : configs) {
    const std::string path = farm::sweep_status_path(o.checkpoint.path, c.name());
    ASSERT_TRUE(fs::exists(path)) << path;
    const HeartbeatInfo hb = prof::read_heartbeat_file(path);
    EXPECT_EQ(hb.config, c.name());
    EXPECT_EQ(hb.state, "done");
    EXPECT_GT(hb.events, 0);
  }

  // The supervisor's aggregate view.
  const std::string status = slurp(o.checkpoint.path + "/farm_status.json");
  ASSERT_FALSE(status.empty());
  EXPECT_TRUE(contains(status, "\"schema_version\": 1"));
  EXPECT_TRUE(contains(status, "\"workers\""));
  EXPECT_TRUE(contains(status, "\"done\": 2"));
  EXPECT_TRUE(contains(status, "\"attempt_wall_ms_total\""));
  for (const ExperimentConfig& c : configs) EXPECT_TRUE(contains(status, c.name()));

  // Wall-clock accounting surfaces in the farm stats artifact.
  EXPECT_GE(report.stats.attempt_wall_ms_total, 0);
  EXPECT_GE(report.stats.elapsed_ms, 0);
  EXPECT_EQ(report.stats.completed, 2);
  const std::string out_dir = temp_path("prof-farm-out");
  fs::remove_all(out_dir);
  farm::write_sweep_artifacts(out_dir, report);
  const std::string stats = slurp(out_dir + "/farm_stats.json");
  EXPECT_TRUE(contains(stats, "farm.attempt_wall_ms_total"));
  EXPECT_TRUE(contains(stats, "farm.elapsed_ms"));
  EXPECT_TRUE(contains(stats, "\"schema_version\":2"));
}

}  // namespace
}  // namespace dfly
